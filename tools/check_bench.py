#!/usr/bin/env python3
"""Perf/determinism gate for the engine-smoke JSON records (stdlib only).

Compares a candidate JSONL file of ``engine_pipeline`` records (what
``kcenter_cli --json`` appends) against a baseline:

* the two files must cover the same set of pipelines;
* the *result* columns must match the baseline — the engine layer is
  deterministic, so any drift in radius/quality/storage is a real
  behavioral change, not noise.  Integer columns (coreset, words, rounds,
  comm_words) compare exactly; float columns (radius, radius_direct,
  quality) compare within a 1e-9 *relative* epsilon, absorbing last-ULP
  libm/FMA differences between the machine that generated the baseline
  and the CI runner while still catching any real drift.  The bit-exact
  thread-determinism guarantee is enforced where it is meaningful — same
  binary, same machine — by tests/test_parallel.cpp and the
  --threads 8 vs 1 CI step, which passes ``--exact`` so its float columns
  compare with equality, not the epsilon.
* the *timing* columns (build_ms, solve_ms) must stay within a generous
  ``--tolerance`` factor (default 3x) of the baseline, ignoring entries
  below an absolute noise floor; ``--ignore-time`` skips this check (used
  by the thread-determinism step, which compares two runs of the same
  build at different ``--threads``).
* with ``--wire``, every candidate record of model ``mpc`` must carry a
  measured ``wire_ratio`` (bytes on the wire / 8*comm_words) in
  (0, --max-wire-ratio]; used by the process-backend CI leg, where the
  candidate ran under ``--backend process`` and the measured traffic must
  track the model's words accounting within the framing budget.

Usage:
    tools/check_bench.py CANDIDATE BASELINE [--tolerance 3.0] [--ignore-time]

A second mode gates the SoA kernel throughput (``--kernel``): the file's
``hotpath_kernel_throughput`` records (bench_mbc_offline Part 5) are
grouped by (n, d, norm) and the fused SIMD path must sustain at least
``--min-speedup`` times the scalar AoS baseline's points/sec in every
group.  The ratio is machine-independent (both variants run in the same
process seconds apart), so a modest floor is a stable CI gate:
    tools/check_bench.py --kernel bench.json --min-speedup 1.2

A third mode gates the out-of-core dataset layer (``--scale``) over the
``scale_ingest`` records bench_scale emits, keyed by (n, pipeline,
source):
* every candidate key present in the baseline must match it in the
  result columns (coreset/words exact, radius within the relative
  epsilon) — the CI smoke runs ``bench_scale --quick`` and the committed
  BENCH_scale.json carries both the quick and the full (1M/10M) rows, so
  the smoke keys always overlap;
* disk-vs-memory identity: where the candidate holds both a ``kcb`` and
  a ``memory`` row for the same (n, pipeline), their result columns must
  agree — streaming from disk is bit-identical to the in-memory path by
  contract;
* ingest throughput: the ``kcb`` row must sustain at least
  ``--min-ingest-ratio`` (default 0.5) of the ``memory`` row's
  points/sec (same process, minutes apart — a stable ratio);
* fixed memory: per pipeline, peak_rss_mb of the largest-n ``kcb`` row
  may exceed the smallest-n one by at most ``--rss-slack-mb`` (default
  160 — the chunk budget plus scratch; an O(n) materialization
  regression at 10M points overshoots this by an order of magnitude).
    tools/check_bench.py --scale scale_smoke.json BENCH_scale.json

Refreshing the committed baseline (BENCH_engine.json) after an intended
behavioral or performance change:
    ./build/tools/kcenter_cli --pipeline all --n 2000 --k 3 --z 16 --eps 0.5 \
        --json BENCH_engine.new.json --json-tag "PR<N>"
    mv BENCH_engine.new.json BENCH_engine.json
and mention the expected column drift in the PR description.
"""

import argparse
import json
import sys

EXACT_COLUMNS = ("coreset", "words", "rounds", "comm_words")
FLOAT_COLUMNS = ("radius", "radius_direct", "quality")
FLOAT_REL_EPS = 1e-9
TIME_COLUMNS = ("build_ms", "solve_ms")
# Timing entries below this many milliseconds are noise on a busy CI
# runner; they are not gated.
TIME_FLOOR_MS = 10.0


def float_close(a, b):
    return abs(a - b) <= FLOAT_REL_EPS * max(abs(a), abs(b), 1.0)


def load_records(path):
    records = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{line_no}: not JSON: {exc}")
            if rec.get("experiment") != "engine_pipeline":
                continue
            name = rec.get("pipeline")
            if name is None:
                raise SystemExit(f"{path}:{line_no}: record without 'pipeline'")
            # Keep the first record per pipeline: the smoke run emits one
            # per pipeline, and thread-sweep files list threads=1 first.
            records.setdefault(name, rec)
    if not records:
        raise SystemExit(f"{path}: no engine_pipeline records found")
    return records


def load_kernel_records(path):
    """Last hotpath_kernel_throughput record per (n, d, norm, variant) —
    appended bench logs gate the freshest run."""
    records = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{line_no}: not JSON: {exc}")
            if rec.get("experiment") != "hotpath_kernel_throughput":
                continue
            key = (rec.get("n"), rec.get("d"), rec.get("norm"),
                   rec.get("variant"))
            records[key] = rec
    if not records:
        raise SystemExit(
            f"{path}: no hotpath_kernel_throughput records found")
    return records


def check_kernel(path, min_speedup):
    records = load_kernel_records(path)
    groups = sorted({(n, d, norm) for (n, d, norm, _) in records})
    failures = []
    for n, d, norm in groups:
        scalar = records.get((n, d, norm, "scalar_aos"))
        simd = records.get((n, d, norm, "simd_soa"))
        if scalar is None or simd is None:
            failures.append(
                f"n={n} d={d} {norm}: missing scalar_aos/simd_soa pair")
            continue
        ratio = float(simd["pts_per_sec"]) / float(scalar["pts_per_sec"])
        status = "ok" if ratio >= min_speedup else "FAIL"
        print(f"  n={n} d={d} {norm}: simd/scalar = {ratio:.2f}x "
              f"({float(simd['pts_per_sec']) / 1e6:.0f} vs "
              f"{float(scalar['pts_per_sec']) / 1e6:.0f} Mpts/s) [{status}]")
        if ratio < min_speedup:
            failures.append(
                f"n={n} d={d} {norm}: simd/scalar speedup {ratio:.2f}x "
                f"below the {min_speedup:g}x floor")
    if failures:
        print(f"check_bench: FAIL ({path}, kernel throughput)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"check_bench: OK — {len(groups)} kernel configs at >= "
          f"{min_speedup:g}x scalar throughput")
    return 0


SCALE_EXACT_COLUMNS = ("coreset", "words")
SCALE_FLOAT_COLUMNS = ("radius",)


def load_scale_records(path):
    """scale_ingest records keyed by (n, pipeline, source); the last record
    per key wins (appended logs gate the freshest run)."""
    records = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{line_no}: not JSON: {exc}")
            if rec.get("experiment") != "scale_ingest":
                continue
            key = (rec.get("n"), rec.get("pipeline"), rec.get("source"))
            if None in key:
                raise SystemExit(
                    f"{path}:{line_no}: scale_ingest record without "
                    f"n/pipeline/source")
            records[key] = rec
    if not records:
        raise SystemExit(f"{path}: no scale_ingest records found")
    return records


def check_scale(candidate_path, baseline_path, min_ingest_ratio,
                rss_slack_mb):
    candidate = load_scale_records(candidate_path)
    baseline = load_scale_records(baseline_path)
    failures = []

    # 1. Baseline determinism: candidate keys that the baseline covers must
    # reproduce its result columns.
    overlap = sorted(set(candidate) & set(baseline))
    if not overlap:
        failures.append(
            "no (n, pipeline, source) keys shared with the baseline — "
            "wrong sizes or a renamed pipeline?")
    for key in overlap:
        cand, base = candidate[key], baseline[key]
        for col in SCALE_EXACT_COLUMNS:
            if cand.get(col) != base.get(col):
                failures.append(
                    f"{key}: {col} = {cand.get(col)!r}, "
                    f"baseline {base.get(col)!r} (exact column)")
        for col in SCALE_FLOAT_COLUMNS:
            if not float_close(float(cand.get(col, 0.0)),
                               float(base.get(col, 0.0))):
                failures.append(
                    f"{key}: {col} = {cand.get(col)!r}, "
                    f"baseline {base.get(col)!r} (beyond {FLOAT_REL_EPS:g} "
                    f"relative)")

    # 2. Disk-vs-memory identity + ingest-throughput floor, inside the
    # candidate run.
    pairs = sorted({(n, p) for (n, p, s) in candidate if s == "memory"})
    for n, pipeline in pairs:
        disk = candidate.get((n, pipeline, "kcb"))
        mem = candidate[(n, pipeline, "memory")]
        if disk is None:
            failures.append(f"n={n} {pipeline}: memory row without a kcb row")
            continue
        for col in SCALE_EXACT_COLUMNS:
            if disk.get(col) != mem.get(col):
                failures.append(
                    f"n={n} {pipeline}: kcb {col} = {disk.get(col)!r} != "
                    f"memory {mem.get(col)!r} (disk runs must reproduce the "
                    f"in-memory result exactly)")
        for col in SCALE_FLOAT_COLUMNS:
            if not float_close(float(disk.get(col, 0.0)),
                               float(mem.get(col, 0.0))):
                failures.append(
                    f"n={n} {pipeline}: kcb {col} = {disk.get(col)!r} != "
                    f"memory {mem.get(col)!r} (disk runs must reproduce the "
                    f"in-memory result)")
        ratio = (float(disk["pts_per_sec"]) / float(mem["pts_per_sec"])
                 if float(mem.get("pts_per_sec", 0.0)) > 0 else 0.0)
        status = "ok" if ratio >= min_ingest_ratio else "FAIL"
        print(f"  n={n} {pipeline}: kcb/memory ingest = {ratio:.2f}x "
              f"[{status}]")
        if ratio < min_ingest_ratio:
            failures.append(
                f"n={n} {pipeline}: disk ingest at {ratio:.2f}x of the "
                f"in-memory rate, below the {min_ingest_ratio:g}x floor")

    # 3. Fixed memory: per pipeline, the largest-n disk row's RSS
    # high-water mark may sit at most rss_slack_mb above the smallest-n
    # one.  (RSS is process-monotone and bench_scale orders disk runs
    # ascending in n, so the delta isolates what the larger run added.)
    by_pipeline = {}
    for (n, pipeline, source), rec in candidate.items():
        if source == "kcb" and "peak_rss_mb" in rec:
            by_pipeline.setdefault(pipeline, []).append(
                (n, float(rec["peak_rss_mb"])))
    for pipeline, rows in sorted(by_pipeline.items()):
        if len(rows) < 2:
            continue
        rows.sort()
        (n_lo, rss_lo), (n_hi, rss_hi) = rows[0], rows[-1]
        delta = rss_hi - rss_lo
        status = "ok" if delta <= rss_slack_mb else "FAIL"
        print(f"  {pipeline}: peak RSS {rss_lo:.0f} MB @ n={n_lo} -> "
              f"{rss_hi:.0f} MB @ n={n_hi} (delta {delta:.0f} MB) [{status}]")
        if delta > rss_slack_mb:
            failures.append(
                f"{pipeline}: disk-run peak RSS grew {delta:.0f} MB from "
                f"n={n_lo} to n={n_hi}, beyond the {rss_slack_mb:g} MB "
                f"slack — out-of-core runs must not scale memory with n")

    if failures:
        print(f"check_bench: FAIL ({candidate_path} vs {baseline_path}, "
              f"scale)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"check_bench: OK — {len(candidate)} scale rows: baseline "
          f"reproduced, disk == memory, ingest >= {min_ingest_ratio:g}x, "
          f"RSS flat in n")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="fresh engine smoke JSONL")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed baseline JSONL (omitted in --kernel "
                             "mode)")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slowdown factor for timing columns")
    parser.add_argument("--ignore-time", action="store_true",
                        help="skip the timing check (determinism-only mode)")
    parser.add_argument("--wire", action="store_true",
                        help="require every candidate mpc record to report a "
                             "measured wire_ratio in (0, --max-wire-ratio] — "
                             "for process-backend runs")
    parser.add_argument("--max-wire-ratio", type=float, default=2.0,
                        help="--wire mode: allowed wire_bytes/(8*comm_words) "
                             "ceiling (framing + checksum overhead budget)")
    parser.add_argument("--exact", action="store_true",
                        help="compare float columns exactly instead of within "
                             "the relative epsilon — for same-binary, "
                             "same-runner comparisons (the --threads 8 vs 1 "
                             "determinism gate), where bit-identity is the "
                             "contract")
    parser.add_argument("--kernel", action="store_true",
                        help="gate the SoA kernel throughput records in "
                             "CANDIDATE instead of diffing engine reports")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="--kernel mode: required simd/scalar points-per-"
                             "sec ratio in every (n, d, norm) group")
    parser.add_argument("--scale", action="store_true",
                        help="gate the out-of-core scale_ingest records in "
                             "CANDIDATE against BASELINE (bench_scale runs)")
    parser.add_argument("--min-ingest-ratio", type=float, default=0.5,
                        help="--scale mode: required kcb/memory points-per-"
                             "sec ratio at each shared (n, pipeline)")
    parser.add_argument("--rss-slack-mb", type=float, default=160.0,
                        help="--scale mode: allowed peak-RSS growth between "
                             "the smallest- and largest-n disk runs")
    args = parser.parse_args()

    if args.kernel:
        return check_kernel(args.candidate, args.min_speedup)
    if args.baseline is None:
        parser.error("BASELINE is required unless --kernel is given")
    if args.scale:
        return check_scale(args.candidate, args.baseline,
                           args.min_ingest_ratio, args.rss_slack_mb)

    candidate = load_records(args.candidate)
    baseline = load_records(args.baseline)
    failures = []

    missing = sorted(set(baseline) - set(candidate))
    extra = sorted(set(candidate) - set(baseline))
    if missing:
        failures.append(f"pipelines missing from candidate: {missing}")
    if extra:
        failures.append(f"pipelines not in baseline: {extra}")

    for name in sorted(set(candidate) & set(baseline)):
        cand, base = candidate[name], baseline[name]
        for col in EXACT_COLUMNS:
            if col not in base:
                continue
            if cand.get(col) != base[col]:
                failures.append(
                    f"{name}: {col} = {cand.get(col)!r}, "
                    f"baseline {base[col]!r} (exact column)")
        for col in FLOAT_COLUMNS:
            if col not in base:
                continue
            if args.exact:
                if cand.get(col) != base[col]:
                    failures.append(
                        f"{name}: {col} = {cand.get(col)!r}, "
                        f"baseline {base[col]!r} (exact float column)")
            elif not float_close(float(cand.get(col, 0.0)),
                                 float(base[col])):
                failures.append(
                    f"{name}: {col} = {cand.get(col)!r}, "
                    f"baseline {base[col]!r} (beyond {FLOAT_REL_EPS:g} "
                    f"relative)")
        if args.wire and cand.get("model") == "mpc":
            ratio = float(cand.get("wire_ratio", 0.0))
            if not 0.0 < ratio <= args.max_wire_ratio:
                failures.append(
                    f"{name}: wire_ratio = {ratio!r} outside "
                    f"(0, {args.max_wire_ratio:g}] — measured transport "
                    f"traffic does not track comm_words (or the run was "
                    f"not on the process backend)")
        if args.ignore_time:
            continue
        for col in TIME_COLUMNS:
            base_ms = float(base.get(col, 0.0))
            cand_ms = float(cand.get(col, 0.0))
            limit = args.tolerance * max(base_ms, TIME_FLOOR_MS)
            if cand_ms > limit:
                failures.append(
                    f"{name}: {col} = {cand_ms:.1f}ms exceeds "
                    f"{args.tolerance:g}x baseline "
                    f"(max({base_ms:.1f}ms, floor {TIME_FLOOR_MS:g}ms))")

    if failures:
        print(f"check_bench: FAIL ({args.candidate} vs {args.baseline})")
        for failure in failures:
            print(f"  - {failure}")
        print("  (intended change? refresh the baseline — see the module "
              "docstring)")
        return 1
    mode = ("result columns match" +
            ("" if args.ignore_time
             else f", timings within {args.tolerance:g}x"))
    print(f"check_bench: OK — {len(candidate)} pipelines, {mode}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
