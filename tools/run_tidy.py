#!/usr/bin/env python3
"""Cached clang-tidy driver over compile_commands.json.

Runs the repo .clang-tidy policy over every first-party translation unit
in the compilation database, in parallel, with a content-addressed result
cache so unchanged TUs cost nothing on re-runs (the CI lint leg persists
the cache directory between runs with actions/cache).

    python3 tools/run_tidy.py --build build            # skip if no clang-tidy
    python3 tools/run_tidy.py --build build --require  # CI: missing tool fails

Cache key per TU: sha256 of (clang-tidy --version, .clang-tidy contents,
the TU's compile command, the TU contents, and a tree hash of every
tracked header).  Any header edit therefore invalidates every cached
entry — deliberately conservative, since clang-tidy findings in headers
are attributed to including TUs.

Exit codes: 0 clean (or tool missing without --require), 1 findings,
2 usage/environment error.  Stdlib only; no pip dependencies.
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import shutil
import subprocess
import sys

EXCLUDE_DIR_PARTS = ("/lint_fixtures/", "/_deps/", "/build/")


def sha256_file(path, h):
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)


def headers_tree_hash(root):
    """One hash over every tracked .hpp, so header edits invalidate TUs."""
    h = hashlib.sha256()
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.hpp"], cwd=root, capture_output=True,
            text=True, check=True).stdout
        headers = [ln for ln in out.splitlines() if ln]
    except (OSError, subprocess.CalledProcessError):
        headers = []
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
            dirnames[:] = sorted(d for d in dirnames if d != "build")
            headers.extend(os.path.join(dirpath, f)
                           for f in sorted(filenames) if f.endswith(".hpp"))
    for rel in sorted(headers):
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        h.update(rel.encode())
        sha256_file(path, h)
    return h.hexdigest()


def tu_key(entry, base):
    h = hashlib.sha256(base.encode())
    h.update(entry.get("command", " ".join(entry.get("arguments", [])))
             .encode())
    sha256_file(entry["file"], h)
    return h.hexdigest()


def run_one(tidy, entry, build_dir, cache_dir, base_key):
    key = tu_key(entry, base_key)
    cache_path = os.path.join(cache_dir, key)
    if os.path.exists(cache_path):
        with open(cache_path, "r", encoding="utf-8") as fh:
            cached = json.load(fh)
        return entry["file"], cached["rc"], cached["output"], True
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", entry["file"]],
        capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    with open(cache_path, "w", encoding="utf-8") as fh:
        json.dump({"rc": proc.returncode, "output": output}, fh)
    return entry["file"], proc.returncode, output, False


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--cache", default=".tidy-cache",
                        help="result cache directory (persisted in CI)")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping — the CI mode")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        msg = "run_tidy: clang-tidy not found on PATH"
        if args.require:
            print(msg, file=sys.stderr)
            return 2
        print(msg + " — skipping (use --require to make this fatal)")
        return 0

    db_path = os.path.join(root, args.build, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_tidy: {db_path} not found — configure with "
              f"cmake -B {args.build} -S . first", file=sys.stderr)
        return 2
    with open(db_path, "r", encoding="utf-8") as fh:
        db = json.load(fh)

    entries = []
    for entry in db:
        f = entry["file"].replace(os.sep, "/")
        if any(part in f for part in EXCLUDE_DIR_PARTS):
            continue
        if not f.startswith(root.replace(os.sep, "/")):
            continue  # FetchContent'd third-party TUs
        entries.append(entry)
    if not entries:
        print("run_tidy: no first-party TUs in the compilation database",
              file=sys.stderr)
        return 2

    cache_dir = os.path.join(root, args.cache)
    os.makedirs(cache_dir, exist_ok=True)
    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True).stdout
    with open(os.path.join(root, ".clang-tidy"), "r",
              encoding="utf-8") as fh:
        config = fh.read()
    base_key = version + config + headers_tree_hash(root)

    failures = []
    hits = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, tidy, e, os.path.join(
            root, args.build), cache_dir, base_key) for e in entries]
        for fut in concurrent.futures.as_completed(futures):
            path, rc, output, cached = fut.result()
            hits += cached
            rel = os.path.relpath(path, root)
            if rc != 0:
                failures.append((rel, output))
                print(f"run_tidy: FAIL {rel}")
                print(output)
            else:
                print(f"run_tidy: ok   {rel}" + (" (cached)" if cached
                                                 else ""))

    print(f"run_tidy: {len(entries)} TUs, {hits} cache hits, "
          f"{len(failures)} failing")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
