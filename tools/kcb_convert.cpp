// kcb_convert — produce, inspect, and verify `.kcb` dataset files
// (dataset/kcb.hpp): the on-disk container the engine streams out of core.
//
//   kcb_convert csv points.csv points.kcb       # strict CSV -> .kcb
//   kcb_convert mtx matrix.mtx points.kcb       # Matrix-Market dense array
//   kcb_convert generate points.kcb --n 10000000 --dim 2 --seed 1
//   kcb_convert info points.kcb                 # header + bbox, O(1)
//   kcb_convert verify points.kcb               # full data-checksum pass
//
// Conversions stream with fixed memory at any n; `generate` writes the
// deterministic clustered workload of dataset::GeneratedSource (point i is
// a pure function of (seed, i), so the same flags reproduce the same bytes
// on any machine).

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "kcenter.hpp"

namespace {

using namespace kc;

constexpr const char kUsage[] =
    "usage: kcb_convert <mode> <args>   (defaults in brackets)\n"
    "  csv <in.csv> <out.kcb>        convert a CSV of points (one point per\n"
    "                                line, comma-separated float64 columns;\n"
    "                                strict: malformed cells are errors)\n"
    "  mtx <in.mtx> <out.kcb>        convert a Matrix-Market dense array\n"
    "                                ('matrix array real general', n x dim)\n"
    "  generate <out.kcb>            write the deterministic clustered scale\n"
    "                                workload\n"
    "    --n/--dim/--k/--seed        size and shape [1000000/2/3/1]\n"
    "    --radius/--separation       cluster radius / spacing x radius [1/40]\n"
    "    --outlier-permille <p>      ~p/1000 points are far outliers [2]\n"
    "  info <file.kcb>               print header + bounding box (O(1))\n"
    "  verify <file.kcb>             recompute the data checksum (reads the\n"
    "                                whole file); exit 1 on mismatch\n"
    "  --help                        print this text and exit\n";

const std::vector<std::string>& known_flags() {
  static const std::vector<std::string> flags{
      "n",      "dim",        "k",
      "radius", "separation", "outlier-permille",
      "seed",   "help"};
  return flags;
}

int cmd_info(const std::string& path) {
  const dataset::MappedKcb map(path);
  const auto& h = map.header();
  std::printf("%s: kcb v%u, %llu points x %d dims (float64)\n", path.c_str(),
              h.version, static_cast<unsigned long long>(h.n), map.dim());
  std::printf("  data bytes     %llu (offset %llu, column stride %llu)\n",
              static_cast<unsigned long long>(h.n * h.dim * 8),
              static_cast<unsigned long long>(dataset::kKcbDataOffset),
              static_cast<unsigned long long>(h.n * 8));
  std::printf("  data checksum  %016llx\n",
              static_cast<unsigned long long>(h.data_checksum));
  std::printf("  bounding box\n");
  for (int j = 0; j < map.dim(); ++j)
    std::printf("    axis %d: [%.17g, %.17g]\n", j,
                map.box_lo()[static_cast<std::size_t>(j)],
                map.box_hi()[static_cast<std::size_t>(j)]);
  return 0;
}

int cmd_verify(const std::string& path) {
  const dataset::MappedKcb map(path);
  if (!map.verify_data()) {
    std::fprintf(stderr, "%s: data checksum MISMATCH (file corrupted)\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: data checksum OK (%llu points x %d dims)\n", path.c_str(),
              static_cast<unsigned long long>(map.size()), map.dim());
  return 0;
}

int cmd_generate(const std::string& path, const Flags& flags) {
  dataset::GeneratedConfig cfg;
  cfg.n = static_cast<std::uint64_t>(flags.get_int("n", 1'000'000));
  cfg.dim = static_cast<int>(flags.get_int("dim", 2));
  cfg.k = static_cast<int>(flags.get_int("k", 3));
  cfg.cluster_radius = flags.get_double("radius", 1.0);
  cfg.separation = flags.get_double("separation", 40.0);
  cfg.outlier_permille =
      static_cast<std::uint32_t>(flags.get_int("outlier-permille", 2));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  dataset::GeneratedSource src(cfg);
  Timer timer;
  const std::uint64_t written = dataset::write_kcb(path, src);
  const double ms = timer.millis();
  std::printf("%s: wrote %llu points x %d dims (%s) in %.1f ms\n",
              path.c_str(), static_cast<unsigned long long>(written), cfg.dim,
              src.describe().c_str(), ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const auto unknown = flags.unknown_flags(known_flags());
  const auto& pos = flags.positional();
  if (!unknown.empty() || pos.empty()) {
    for (const auto& name : unknown)
      std::fprintf(stderr, "error: unknown flag '--%s'\n", name.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }

  const std::string& mode = pos.front();
  try {
    if ((mode == "csv" || mode == "mtx") && pos.size() == 3) {
      Timer timer;
      const std::uint64_t written =
          mode == "csv" ? kc::dataset::csv_to_kcb(pos[1], pos[2])
                        : kc::dataset::mtx_to_kcb(pos[1], pos[2]);
      std::printf("%s: wrote %llu points from %s in %.1f ms\n",
                  pos[2].c_str(), static_cast<unsigned long long>(written),
                  pos[1].c_str(), timer.millis());
      return 0;
    }
    if (mode == "generate" && pos.size() == 2)
      return cmd_generate(pos[1], flags);
    if (mode == "info" && pos.size() == 2) return cmd_info(pos[1]);
    if (mode == "verify" && pos.size() == 2) return cmd_verify(pos[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::fprintf(stderr, "error: unrecognized mode/arguments\n");
  std::fputs(kUsage, stderr);
  return 2;
}
