#!/usr/bin/env python3
"""Project-invariant static analyzer for the kcenter repo (stdlib only).

The codebase's correctness story rests on conventions no compiler checks:
determinism by ordered reduction, float64 dimension-ascending accumulation,
Options structs that hold only algorithmic knobs while execution resources
live in ``mpc::ExecContext``, and the ``util < geometry < ... < engine``
module layering.  ``kc_lint`` machine-checks those conventions over
``src/ tests/ bench/ tools/ examples/`` and the build files, with
file:line diagnostics, an inline allowlist, and a JSON report.

Rules
-----
layering      #include edges between src/ modules must follow the
              documented DAG (see ``ALLOWED_INCLUDES`` below); the
              file-level include graph must be acyclic; every public
              ``src/**/*.hpp`` must be reachable from the umbrella header
              ``src/kcenter.hpp``.  ``LEAF_HEADERS`` (forward-declaration
              only headers, e.g. ``mpc/context.hpp``) are includable from
              anywhere but must themselves include nothing.
determinism   no ``std::rand``/``srand``/``std::random_device`` and no
              time-seeded engines outside ``src/util/rng``; no iteration
              over ``unordered_{map,set}`` (iteration order feeds results
              — use an ordered container, sort the keys, or allowlist an
              order-insensitive use); no wall-clock reads in ``src/``
              outside ``util/timer.hpp`` (bench/tools/examples/tests time
              things by design and are exempt from the wall-clock ban).
numerics      no ``float`` accumulators (``float x; ... x += ...`` —
              accumulation is float64 by contract, storage may be float32);
              no ``==``/``!=`` against floating-point literals (exact
              sentinel compares must be allowlisted with a reason); no
              ``-ffast-math``-family flags in any build file (they break
              the bit-reproducibility contract every differential test
              depends on).
api           Options structs in ``src/`` must not regain execution-
              resource members (``pool``/``buffer``/``faults``/
              ``transport``/``injector`` — those live in
              ``mpc::ExecContext``); MPC entry points (functions declared
              in ``src/mpc/*.hpp`` taking an ``...Options`` parameter)
              must also take an ``ExecContext``.
syscalls      statement-position (return-value-discarding) calls to
              ``read``/``write``/``fsync``/``posix_madvise``/``waitpid``
              and friends in ``src/dataset/`` and ``src/mpc/transport_*``
              are flagged; check the return or allowlist with a reason.
allowlist     allow annotations must carry a non-empty reason and must
              actually suppress something (stale annotations rot).

Allowlist syntax
----------------
    some_call();  // kc-lint-allow(<rule>): <reason>
or on the immediately preceding line:
    // kc-lint-allow(<rule>): <reason>
    some_call();

Usage
-----
    tools/kc_lint.py [--root DIR] [--json OUT] [--budget BASELINE]
    tools/kc_lint.py --self-test tests/lint_fixtures
    tools/kc_lint.py --update-budget tools/lint_budget.json

``--budget`` compares the allowlist/NOLINT counts against a committed
baseline (tools/lint_budget.json) and fails on growth, so new suppressions
are a conscious, reviewed decision — the same discipline check_bench.py
applies to performance numbers.  Exit status: 0 clean, 1 diagnostics or
budget growth, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
CPP_EXTS = (".hpp", ".cpp")
# Directories never scanned (fixture trees contain deliberate violations).
EXCLUDE_PARTS = {"build", ".git", "lint_fixtures", "_deps"}

# The documented module DAG: each src/ module may include only the modules
# listed here (plus itself and LEAF_HEADERS).  This is the machine-readable
# form of  util < geometry < {core, dataset, workload}
#               < {mpc, stream, sketch, dynamic, lowerbound} < engine
# with the intra-group refinements the code actually uses (core below
# dataset/workload, sketch below dynamic/lowerbound, dataset below mpc —
# the wire format reuses the .kcb checksum).
ALLOWED_INCLUDES = {
    "util": set(),
    "geometry": {"util"},
    "sketch": {"util"},
    "core": {"util", "geometry"},
    "dataset": {"util", "geometry", "core"},
    "workload": {"util", "geometry", "core"},
    "mpc": {"util", "geometry", "core", "dataset"},
    "stream": {"util", "geometry", "core"},
    "dynamic": {"util", "geometry", "core", "sketch"},
    "lowerbound": {"util", "geometry", "core", "sketch"},
    "engine": {"util", "geometry", "core", "dataset", "workload", "mpc",
               "stream", "sketch", "dynamic", "lowerbound"},
}

# Forward-declaration-only headers, includable from any module (they carry
# no dependencies, so they cannot create a real layering edge).  A leaf
# header including anything project-local is itself a violation.
LEAF_HEADERS = {"mpc/context.hpp"}

UMBRELLA = "kcenter.hpp"

# determinism: RNG primitives are confined to util/rng.
RNG_EXEMPT = {"src/util/rng.hpp", "src/util/rng.cpp"}
# determinism: raw wall-clock reads in src/ are confined to the Timer.
WALLCLOCK_EXEMPT = {"src/util/timer.hpp"}

# api: execution-resource member names banned from Options structs.
BANNED_OPTION_MEMBERS = {"pool", "buffer", "faults", "transport", "injector"}
# api: mpc headers where Options-taking functions are transport/context
# plumbing rather than algorithm entry points.
API_EXEMPT_MPC_HEADERS = {"src/mpc/transport.hpp", "src/mpc/context.hpp"}

# syscalls: functions whose discarded return hides real I/O failures.
CHECKED_SYSCALLS = (
    "read", "write", "pread", "pwrite", "fsync", "fdatasync", "ftruncate",
    "posix_madvise", "madvise", "msync", "waitpid", "close", "kill",
    "shutdown",
)
SYSCALL_SCOPES = ("src/dataset/", "src/mpc/transport_")

FASTMATH_FLAGS = re.compile(
    r"-ffast-math|-Ofast\b|-funsafe-math-optimizations|"
    r"-fassociative-math|-freciprocal-math|-ffinite-math-only")

RULES = ("layering", "determinism", "numerics", "api", "syscalls",
         "allowlist")

ALLOW_RE = re.compile(r"//\s*kc-lint-allow\(([a-z]+)\)\s*:?\s*(.*?)\s*$")

# ---------------------------------------------------------------------------
# C++ comment/string stripping (keeps line structure intact)
# ---------------------------------------------------------------------------


def strip_cpp(text, keep_strings=False):
    """Replaces comments — and, unless ``keep_strings``, string and char
    literals — with spaces so rule regexes never match inside them.
    Newlines survive, so line numbers in the stripped text equal line
    numbers in the file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\\\s]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n - len(close) if j < 0 else j
                seg = text[i:j + len(close)]
                out.append("".join(ch if ch == "\n" else " " for ch in seg))
                i = j + len(close)
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            # Skip char/string literal with escapes; keep the delimiters so
            # expressions stay balanced-ish.
            out.append(c)
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated (or a stray quote); bail out
                j += 1
            body = text[i + 1:j]
            out.append(body if keep_strings else " " * len(body))
            if j < n and text[j] == c:
                out.append(c)
                j += 1
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_hash_comments(text):
    """Strip #-comments in cmake/yaml/shell build files (line structure
    kept).  Quote-awareness is deliberately skipped: a fast-math flag
    inside a quoted string is still a flag."""
    return "\n".join(line.split("#", 1)[0] for line in text.split("\n"))


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


class SourceFile:
    def __init__(self, root, relpath):
        self.rel = relpath.replace(os.sep, "/")
        path = os.path.join(root, relpath)
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            self.raw = fh.read()
        self.raw_lines = self.raw.split("\n")
        self.stripped = strip_cpp(self.raw)
        self.lines = self.stripped.split("\n")
        # Comments stripped, strings kept: include paths live in strings.
        self.code_lines = strip_cpp(self.raw, keep_strings=True).split("\n")
        # allow annotations: line -> (rule, reason, used[False])
        self.allows = []
        for no, line in enumerate(self.raw_lines, 1):
            m = ALLOW_RE.search(line)
            if m:
                self.allows.append(
                    {"line": no, "rule": m.group(1), "reason": m.group(2),
                     "used": False})
        self.nolint = sum(line.count("NOLINT") for line in self.raw_lines)

    @property
    def in_src(self):
        return self.rel.startswith("src/")

    def includes(self):
        """Yields (line_no, include_string) for quoted includes."""
        for no, line in enumerate(self.code_lines, 1):
            m = re.match(r'\s*#\s*include\s+"([^"\n]+)"', line)
            if m:
                yield no, m.group(1)


class Linter:
    def __init__(self, root):
        self.root = root
        self.files = {}
        self.diags = []  # dicts: rule/file/line/message
        self.build_files = []  # (relpath, raw_lines)
        self._load()

    # -- loading ----------------------------------------------------------

    def _excluded(self, relpath):
        return any(p in EXCLUDE_PARTS for p in relpath.split(os.sep))

    def _load(self):
        for d in SCAN_DIRS:
            top = os.path.join(self.root, d)
            if not os.path.isdir(top):
                continue
            for dirpath, dirnames, filenames in os.walk(top):
                dirnames[:] = sorted(
                    x for x in dirnames if x not in EXCLUDE_PARTS)
                for f in sorted(filenames):
                    rel = os.path.relpath(os.path.join(dirpath, f), self.root)
                    if self._excluded(rel):
                        continue
                    if f.endswith(CPP_EXTS):
                        self.files[rel.replace(os.sep, "/")] = SourceFile(
                            self.root, rel)
        # Build files for the fast-math rule: every CMakeLists.txt/*.cmake
        # outside excluded dirs, CI workflows, and shell scripts in tools/.
        candidates = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                x for x in dirnames if x not in EXCLUDE_PARTS)
            for f in sorted(filenames):
                if (f == "CMakeLists.txt" or f.endswith(".cmake")
                        or f.endswith((".yml", ".yaml", ".sh"))):
                    candidates.append(
                        os.path.relpath(os.path.join(dirpath, f), self.root))
        for rel in sorted(candidates):
            with open(os.path.join(self.root, rel), "r", encoding="utf-8",
                      errors="replace") as fh:
                text = strip_hash_comments(fh.read())
            self.build_files.append(
                (rel.replace(os.sep, "/"), text.split("\n")))

    # -- diagnostics ------------------------------------------------------

    def diag(self, rule, rel, line, message):
        self.diags.append(
            {"rule": rule, "file": rel, "line": line, "message": message})

    # -- rule 1: layering -------------------------------------------------

    def module_of(self, rel):
        assert rel.startswith("src/")
        rest = rel[len("src/"):]
        return rest.split("/")[0] if "/" in rest else "<root>"

    def resolve_include(self, rel, inc):
        """Project-relative path of the included file, or None."""
        cand = "src/" + inc
        if cand in self.files:
            return cand
        base = rel.rsplit("/", 1)[0]
        cand = base + "/" + inc
        if cand in self.files:
            return cand
        return None

    def check_layering(self):
        src_files = {r: f for r, f in self.files.items() if f.in_src}
        graph = {}
        for rel, f in sorted(src_files.items()):
            edges = []
            for no, inc in f.includes():
                dst = self.resolve_include(rel, inc)
                if dst is None or not dst.startswith("src/"):
                    continue
                edges.append((no, dst))
                self._check_edge(rel, no, dst)
            graph[rel] = edges

        self._check_cycles(graph)
        self._check_umbrella(src_files, graph)

    def _check_edge(self, rel, no, dst):
        src_mod = self.module_of(rel)
        dst_mod = self.module_of(dst)
        dst_short = dst[len("src/"):]
        if rel[len("src/"):] in LEAF_HEADERS:
            self.diag("layering", rel, no,
                      f"leaf header includes {dst_short!r}: leaf headers "
                      f"must stay forward-declaration-only")
            return
        if dst_short in LEAF_HEADERS or src_mod == dst_mod:
            return
        if src_mod == "<root>":  # the umbrella may include everything
            return
        if dst_mod == "<root>":
            self.diag("layering", rel, no,
                      "module code must not include the umbrella header "
                      "(include the specific module headers instead)")
            return
        allowed = ALLOWED_INCLUDES.get(src_mod, set())
        if dst_mod not in allowed:
            self.diag("layering", rel, no,
                      f"illegal include edge {src_mod} -> {dst_mod} "
                      f"({dst_short!r}): the layering DAG allows {src_mod} "
                      f"to include only "
                      f"{{{', '.join(sorted(allowed)) or 'nothing'}}}")

    def _check_cycles(self, graph):
        WHITE, GREY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in graph}
        stack = []

        def visit(rel):
            color[rel] = GREY
            stack.append(rel)
            for no, dst in graph.get(rel, ()):
                if color.get(dst, BLACK) == GREY:
                    cycle = stack[stack.index(dst):] + [dst]
                    self.diag("layering", rel, no,
                              "include cycle: " + " -> ".join(
                                  p[len("src/"):] for p in cycle))
                elif color.get(dst) == WHITE:
                    visit(dst)
            stack.pop()
            color[rel] = BLACK

        for rel in sorted(graph):
            if color[rel] == WHITE:
                visit(rel)

    def _check_umbrella(self, src_files, graph):
        umbrella = "src/" + UMBRELLA
        if umbrella not in src_files:
            return  # fixture trees without an umbrella skip this check
        reached = set()
        todo = [umbrella]
        while todo:
            cur = todo.pop()
            if cur in reached:
                continue
            reached.add(cur)
            for _, dst in graph.get(cur, ()):
                todo.append(dst)
        for rel in sorted(src_files):
            if rel.endswith(".hpp") and rel not in reached:
                self.diag("layering", rel, 1,
                          f"public header not reachable from the umbrella "
                          f"header src/{UMBRELLA}")

    # -- rule 2: determinism ----------------------------------------------

    RNG_RE = re.compile(r"\b(?:std::)?(?:random_device\b|s?rand\s*\()")
    TIME_SEED_RE = re.compile(
        r"(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|ranlux\w+|"
        r"\bseed)\s*[({][^;)}]*(?:\btime\s*\(|::now\b)")
    WALLCLOCK_RE = re.compile(
        r"::now\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
        r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|"
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\b")

    def check_determinism(self):
        for rel, f in sorted(self.files.items()):
            if rel not in RNG_EXEMPT:
                for no, line in enumerate(f.lines, 1):
                    if self.RNG_RE.search(line):
                        self.diag("determinism", rel, no,
                                  "raw RNG primitive (std::rand/srand/"
                                  "random_device); all randomness flows "
                                  "through util/rng for reproducibility")
                    if self.TIME_SEED_RE.search(line):
                        self.diag("determinism", rel, no,
                                  "time-seeded RNG: seeds must be explicit "
                                  "inputs, never wall-clock reads")
            self._check_unordered_iteration(rel, f)
            if f.in_src and rel not in WALLCLOCK_EXEMPT:
                for no, line in enumerate(f.lines, 1):
                    if self.WALLCLOCK_RE.search(line):
                        self.diag("determinism", rel, no,
                                  "wall-clock read in src/ (use util/"
                                  "timer.hpp Timer; raw clocks are for "
                                  "bench/tools code)")

    UNORDERED_DECL_RE = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;={(]")

    def _check_unordered_iteration(self, rel, f):
        names = set()
        for line in f.lines:
            m = self.UNORDERED_DECL_RE.search(line)
            if m:
                names.add(m.group(1))
        if not names:
            return
        alt = "|".join(sorted(names))
        iter_re = re.compile(
            r"for\s*\([^;{}]*?:\s*(?:this->)?(?:" + alt + r")\s*\)|"
            r"\b(?:" + alt + r")\s*\.\s*c?begin\s*\(")
        for no, line in enumerate(f.lines, 1):
            if iter_re.search(line):
                self.diag("determinism", rel, no,
                          "iteration over an unordered container: the "
                          "visit order is hash-dependent and must not feed "
                          "results or reductions (sort the keys, use an "
                          "ordered container, or allowlist an order-"
                          "insensitive use)")

    # -- rule 3: numerics -------------------------------------------------

    FLOAT_DECL_RE = re.compile(r"\bfloat\s+(\w+)\s*[;={]")
    FLOAT_LIT = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?"
    FLOAT_EQ_RE = re.compile(
        r"[!=]=\s*" + FLOAT_LIT + r"\b|" + FLOAT_LIT + r"\s*[!=]=")

    def check_numerics(self):
        for rel, f in sorted(self.files.items()):
            acc_names = set()
            for line in f.lines:
                m = self.FLOAT_DECL_RE.search(line)
                if m:
                    acc_names.add(m.group(1))
            acc_re = (re.compile(
                r"\b(?:" + "|".join(sorted(acc_names)) + r")\s*\+=")
                if acc_names else None)
            for no, line in enumerate(f.lines, 1):
                if acc_re and acc_re.search(line):
                    self.diag("numerics", rel, no,
                              "float accumulator: accumulation is float64 "
                              "by contract (float32 is a storage format, "
                              "see geometry/point_buffer.hpp)")
                if self.FLOAT_EQ_RE.search(line):
                    self.diag("numerics", rel, no,
                              "==/!= against a floating-point literal; "
                              "exact sentinel compares need an allowlist "
                              "reason, tolerance compares a helper")
        for rel, lines in self.build_files:
            for no, line in enumerate(lines, 1):
                if FASTMATH_FLAGS.search(line):
                    self.diag("numerics", rel, no,
                              "fast-math-family flag: breaks the bit-"
                              "reproducibility contract (ordered "
                              "reductions, differential tests)")

    # -- rule 4: api conventions ------------------------------------------

    OPTIONS_RE = re.compile(r"\bstruct\s+(\w*Options)\b[^;{]*\{")

    def check_api(self):
        for rel, f in sorted(self.files.items()):
            if not f.in_src:
                continue
            self._check_options_members(rel, f)
            if (rel.startswith("src/mpc/") and rel.endswith(".hpp")
                    and rel not in API_EXEMPT_MPC_HEADERS):
                self._check_mpc_entry_points(rel, f)

    def _check_options_members(self, rel, f):
        text = f.stripped
        for m in self.OPTIONS_RE.finditer(text):
            body_start = m.end()
            depth, i = 1, body_start
            while i < len(text) and depth > 0:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                i += 1
            body = text[body_start:i - 1]
            base_line = text.count("\n", 0, body_start) + 1
            member_re = re.compile(
                r"\b(" + "|".join(sorted(BANNED_OPTION_MEMBERS)) +
                r")\s*(?:=[^;]*)?;")
            for bm in member_re.finditer(body):
                line = base_line + body.count("\n", 0, bm.start())
                self.diag("api", rel, line,
                          f"{m.group(1)} holds execution resource "
                          f"{bm.group(1)!r}: Options structs carry "
                          f"algorithmic knobs only — execution resources "
                          f"live in mpc::ExecContext (mpc/context.hpp)")

    FUNC_OPEN_RE = re.compile(r"\b(\w+)\s*\(")

    def _check_mpc_entry_points(self, rel, f):
        text = f.stripped
        for m in self.FUNC_OPEN_RE.finditer(text):
            name = m.group(1)
            if name in ("struct", "if", "for", "while", "switch", "return",
                        "sizeof", "defined", "decltype", "static_assert"):
                continue
            depth, i = 1, m.end()
            while i < len(text) and depth > 0:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            params = text[m.end():i - 1]
            tail = text[i:i + 80]
            if not re.match(r"\s*(?:noexcept\s*)?(?:->\s*\w+\s*)?;", tail):
                continue  # not a declaration (definition, call, macro, ...)
            if not re.search(r"\b\w+Options\b", params):
                continue
            if "ExecContext" not in params:
                line = text.count("\n", 0, m.start()) + 1
                self.diag("api", rel, line,
                          f"MPC entry point {name!r} takes an Options "
                          f"parameter but no ExecContext: execution "
                          f"environment (pool/buffer/faults/transport) is "
                          f"passed via mpc::ExecContext")

    # -- rule 5: unchecked syscall returns --------------------------------

    SYSCALL_RE = re.compile(
        r"^\s*(?:\(void\)\s*|static_cast<void>\(\s*)?(?:::)?\b(" +
        "|".join(CHECKED_SYSCALLS) + r")\s*\(")

    def check_syscalls(self):
        for rel, f in sorted(self.files.items()):
            if not any(rel.startswith(s) for s in SYSCALL_SCOPES):
                continue
            for no, line in enumerate(f.lines, 1):
                m = self.SYSCALL_RE.match(line)
                if m:
                    self.diag("syscalls", rel, no,
                              f"unchecked return of ::{m.group(1)}(): I/O "
                              f"and process-control failures on this path "
                              f"must be handled or explicitly allowlisted")

    # -- allowlist resolution ---------------------------------------------

    @staticmethod
    def _covering_lines(f, line):
        """Line numbers whose kc-lint-allow annotation covers ``line``: the
        line itself (trailing annotation) plus the run of blank/comment-only
        lines immediately above it (so wrapped reasons work)."""
        covered = {line}
        k = line - 1
        while k >= 1:
            stripped = f.lines[k - 1] if k - 1 < len(f.lines) else ""
            raw = f.raw_lines[k - 1] if k - 1 < len(f.raw_lines) else ""
            if not raw.strip() or not stripped.strip():
                covered.add(k)  # blank or comment-only
                k -= 1
            else:
                break
        return covered

    def apply_allowlist(self):
        kept, suppressed = [], []
        for d in sorted(self.diags,
                        key=lambda d: (d["file"], d["line"], d["rule"])):
            f = self.files.get(d["file"])
            allow = None
            if f is not None:
                covered = self._covering_lines(f, d["line"])
                for a in f.allows:
                    if a["rule"] == d["rule"] and a["line"] in covered:
                        allow = a
                        break
            if allow is not None and allow["reason"]:
                allow["used"] = True
                suppressed.append(dict(d, reason=allow["reason"]))
            else:
                kept.append(d)
        # Allowlist hygiene: empty reasons and stale annotations are
        # themselves diagnostics.
        for rel, f in sorted(self.files.items()):
            for a in f.allows:
                if a["rule"] not in RULES or a["rule"] == "allowlist":
                    kept.append({"rule": "allowlist", "file": rel,
                                 "line": a["line"],
                                 "message": f"unknown rule "
                                            f"{a['rule']!r} in kc-lint-allow "
                                            f"(rules: "
                                            f"{', '.join(RULES[:-1])})"})
                elif not a["reason"]:
                    kept.append({"rule": "allowlist", "file": rel,
                                 "line": a["line"],
                                 "message": "kc-lint-allow without a "
                                            "reason: every suppression "
                                            "carries its justification"})
                elif not a["used"]:
                    kept.append({"rule": "allowlist", "file": rel,
                                 "line": a["line"],
                                 "message": f"stale kc-lint-allow"
                                            f"({a['rule']}): suppresses "
                                            f"nothing on this or the next "
                                            f"line — remove it"})
        kept.sort(key=lambda d: (d["file"], d["line"], d["rule"]))
        return kept, suppressed

    # -- driver -----------------------------------------------------------

    def run(self):
        self.check_layering()
        self.check_determinism()
        self.check_numerics()
        self.check_api()
        self.check_syscalls()
        # Dedup (two patterns may fire on one line).
        seen = set()
        unique = []
        for d in self.diags:
            key = (d["rule"], d["file"], d["line"])
            if key not in seen:
                seen.add(key)
                unique.append(d)
        self.diags = unique
        return self.apply_allowlist()


# ---------------------------------------------------------------------------
# Report / budget
# ---------------------------------------------------------------------------


def build_report(linter, kept, suppressed):
    rules = {}
    for r in RULES:
        rules[r] = {
            "diagnostics": sum(1 for d in kept if d["rule"] == r),
            "allowlisted": sum(1 for d in suppressed if d["rule"] == r),
        }
    nolint_files = {rel: f.nolint for rel, f in sorted(linter.files.items())
                    if f.nolint}
    return {
        "tool": "kc_lint",
        "version": 1,
        "files_scanned": len(linter.files),
        "build_files_scanned": len(linter.build_files),
        "rules": rules,
        "diagnostics": kept,
        "allowlisted": suppressed,
        "nolint": {"total": sum(nolint_files.values()),
                   "files": nolint_files},
        "status": "fail" if kept else "ok",
    }


def budget_from_report(report):
    return {
        "comment": "Committed allowlist/NOLINT budget — kc_lint.py fails "
                   "when a count grows past this baseline.  Shrink freely; "
                   "grow only as a conscious, reviewed decision "
                   "(kc_lint.py --update-budget tools/lint_budget.json).",
        "allow": {r: report["rules"][r]["allowlisted"]
                  for r in RULES if report["rules"][r]["allowlisted"]},
        "nolint": report["nolint"]["total"],
    }


def check_budget(report, budget_path):
    try:
        with open(budget_path, "r", encoding="utf-8") as fh:
            budget = json.load(fh)
    except OSError as exc:
        print(f"kc_lint: cannot read budget {budget_path}: {exc}")
        return ["missing budget baseline"]
    failures = []
    for rule in RULES:
        cur = report["rules"][rule]["allowlisted"]
        base = budget.get("allow", {}).get(rule, 0)
        if cur > base:
            failures.append(
                f"allowlist budget for {rule!r} grew: {cur} > committed "
                f"{base} (tools/lint_budget.json) — remove suppressions or "
                f"consciously bump the budget with --update-budget")
        elif cur < base:
            print(f"kc_lint: note — {rule} allowlist count {cur} is below "
                  f"the committed budget {base}; consider tightening the "
                  f"baseline")
    cur = report["nolint"]["total"]
    base = budget.get("nolint", 0)
    if cur > base:
        failures.append(
            f"NOLINT budget grew: {cur} > committed {base} — every new "
            f"clang-tidy suppression is a conscious, reviewed decision")
    return failures


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus
# ---------------------------------------------------------------------------


def normalize(diags):
    return sorted(f"{d['rule']} {d['file']}:{d['line']}" for d in diags)


def self_test(fixtures_dir):
    if not os.path.isdir(fixtures_dir):
        print(f"kc_lint: fixture dir {fixtures_dir} not found")
        return 2
    cases = sorted(d for d in os.listdir(fixtures_dir)
                   if os.path.isdir(os.path.join(fixtures_dir, d)))
    if not cases:
        print(f"kc_lint: no fixture cases under {fixtures_dir}")
        return 2
    failed = 0
    for case in cases:
        case_dir = os.path.join(fixtures_dir, case)
        expected_path = os.path.join(case_dir, "expected.txt")
        expected = []
        if os.path.exists(expected_path):
            with open(expected_path, "r", encoding="utf-8") as fh:
                expected = sorted(
                    line.strip() for line in fh
                    if line.strip() and not line.startswith("#"))
        linter = Linter(case_dir)
        kept, suppressed = linter.run()
        actual = normalize(kept)
        ok = actual == expected
        # Optional budget assertion (the allowlist fixtures pin the
        # per-rule suppression counts the JSON report must carry).
        budget_path = os.path.join(case_dir, "expected_budget.json")
        if ok and os.path.exists(budget_path):
            with open(budget_path, "r", encoding="utf-8") as fh:
                want = json.load(fh)
            report = build_report(linter, kept, suppressed)
            got = {r: report["rules"][r]["allowlisted"]
                   for r in RULES if report["rules"][r]["allowlisted"]}
            if got != want:
                ok = False
                print(f"  {case}: allowlist budget mismatch: "
                      f"got {got}, want {want}")
        status = "PASS" if ok else "FAIL"
        print(f"  {case}: {status} ({len(actual)} diagnostics)")
        if not ok:
            failed += 1
            for line in actual:
                mark = " " if line in expected else "+"
                print(f"    {mark} {line}")
            for line in expected:
                if line not in actual:
                    print(f"    - {line} (expected, not produced)")
    if failed:
        print(f"kc_lint self-test: FAIL ({failed}/{len(cases)} cases)")
        return 1
    print(f"kc_lint self-test: OK ({len(cases)} cases)")
    return 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: the parent of tools/)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write the machine-readable report here")
    parser.add_argument("--budget", default=None, metavar="BASELINE",
                        help="fail if allowlist/NOLINT counts grew past "
                             "this committed baseline")
    parser.add_argument("--update-budget", default=None, metavar="BASELINE",
                        help="rewrite the committed budget from the "
                             "current tree and exit")
    parser.add_argument("--self-test", default=None, metavar="DIR",
                        help="run the fixture corpus under DIR and compare "
                             "against the golden expected.txt files")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.self_test)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"kc_lint: no src/ under root {root}")
        return 2

    linter = Linter(root)
    kept, suppressed = linter.run()
    report = build_report(linter, kept, suppressed)

    if args.update_budget:
        with open(args.update_budget, "w", encoding="utf-8") as fh:
            json.dump(budget_from_report(report), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"kc_lint: wrote budget baseline to {args.update_budget}")
        # Still report diagnostics: a budget refresh on a dirty tree is
        # almost certainly a mistake.

    budget_failures = []
    if args.budget:
        budget_failures = check_budget(report, args.budget)
        if budget_failures:
            report["status"] = "fail"

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for d in kept:
        print(f"{d['file']}:{d['line']}: [{d['rule']}] {d['message']}")
    for failure in budget_failures:
        print(f"budget: {failure}")

    counts = ", ".join(
        f"{r}={report['rules'][r]['allowlisted']}"
        for r in RULES if report["rules"][r]["allowlisted"])
    if kept or budget_failures:
        print(f"kc_lint: FAIL — {len(kept)} diagnostics, "
              f"{len(budget_failures)} budget violations over "
              f"{len(linter.files)} files")
        return 1
    print(f"kc_lint: OK — {len(linter.files)} files, "
          f"{len(linter.build_files)} build files, "
          f"{len(suppressed)} allowlisted"
          + (f" ({counts})" if counts else "")
          + f", NOLINT={report['nolint']['total']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
